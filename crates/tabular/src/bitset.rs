//! Fixed-width row bitsets for columnar subgroup enumeration.
//!
//! A [`RowMask`] represents a set of row indices as packed `u64` words,
//! so set intersection is a word-wise `AND` and set cardinality is a
//! `popcount` — the two operations the conjunction-lattice subgroup
//! auditor performs millions of times per audit. Compared to the
//! `Vec<usize>` row lists it replaces, a mask over `n` rows costs
//! `n / 8` bytes regardless of how many rows it selects, intersecting
//! two masks touches `n / 64` words with no branches, and counting
//! members compiles to hardware `popcnt`.
//!
//! The key fused primitive is [`RowMask::count_and`]: it computes
//! `|a ∩ b|` without materializing the intersection, which is how the
//! subgroup auditor answers "how many positive decisions inside this
//! subgroup?" (`count_and(subgroup, decisions)`) with zero allocation.
//!
//! Invariant: bits at positions `>= n_bits` (the tail of the last word)
//! are always zero, so `count_ones` never over-counts. Every
//! constructor and mutator maintains this.

/// A fixed-width set of row indices backed by packed `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowMask {
    words: Vec<u64>,
    n_bits: usize,
}

impl RowMask {
    /// An empty mask over `n_bits` rows.
    pub fn zeros(n_bits: usize) -> RowMask {
        RowMask {
            words: vec![0u64; n_bits.div_ceil(64)],
            n_bits,
        }
    }

    /// A mask over `n_bits` rows with exactly the given rows set.
    ///
    /// Panics if any index is out of bounds (row indices come from the
    /// dataset that fixed `n_bits`, so a violation is a logic error).
    pub fn from_indices<I: IntoIterator<Item = usize>>(n_bits: usize, indices: I) -> RowMask {
        let mut mask = RowMask::zeros(n_bits);
        for i in indices {
            mask.set(i);
        }
        mask
    }

    /// A mask selecting the rows where `flags` is `true`.
    pub fn from_bools(flags: &[bool]) -> RowMask {
        let mut mask = RowMask::zeros(flags.len());
        for (i, &f) in flags.iter().enumerate() {
            if f {
                mask.set(i);
            }
        }
        mask
    }

    /// One mask per level: `masks[l]` selects the rows where
    /// `codes[row] == l`. This is the per-`(column, level)` layout the
    /// subgroup lattice intersects; it is built once per audited column.
    ///
    /// Panics if any code is `>= n_levels` (dataset categorical columns
    /// validate codes at construction).
    pub fn level_masks(codes: &[u32], n_levels: usize) -> Vec<RowMask> {
        let mut masks = vec![RowMask::zeros(codes.len()); n_levels];
        for (row, &code) in codes.iter().enumerate() {
            masks[code as usize].set(row);
        }
        masks
    }

    /// The number of rows this mask ranges over (not the popcount).
    pub fn n_bits(&self) -> usize {
        self.n_bits
    }

    /// Adds a row to the set. Panics if `i >= n_bits`.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.n_bits, "bit {i} out of range {}", self.n_bits);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Whether row `i` is in the set (`false` when out of range).
    pub fn contains(&self, i: usize) -> bool {
        i < self.n_bits && (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// The number of rows in the set (hardware popcount per word,
    /// batched four words wide — see [`RowMask::count_and`]).
    pub fn count_ones(&self) -> usize {
        let mut quads = self.words.chunks_exact(4);
        let (mut c0, mut c1, mut c2, mut c3) = (0usize, 0usize, 0usize, 0usize);
        for quad in quads.by_ref() {
            if let [w0, w1, w2, w3] = quad {
                c0 += w0.count_ones() as usize;
                c1 += w1.count_ones() as usize;
                c2 += w2.count_ones() as usize;
                c3 += w3.count_ones() as usize;
            }
        }
        let mut total = (c0 + c1) + (c2 + c3);
        for w in quads.remainder() {
            total += w.count_ones() as usize;
        }
        total
    }

    /// Writes `self ∩ other` into `out` without allocating.
    ///
    /// All three masks must range over the same number of rows.
    pub fn and_into(&self, other: &RowMask, out: &mut RowMask) {
        debug_assert_eq!(self.n_bits, other.n_bits);
        debug_assert_eq!(self.n_bits, out.n_bits);
        for ((o, &a), &b) in out.words.iter_mut().zip(&self.words).zip(&other.words) {
            *o = a & b;
        }
    }

    /// `|self ∩ other|` — AND and popcount fused, no intersection mask
    /// is materialized. This is the subgroup auditor's positive-count
    /// primitive: `subgroup.count_and(&decisions)`.
    ///
    /// The loop is batched four words (256 rows) per step with four
    /// independent integer accumulators, so the `popcnt` units pipeline
    /// instead of serializing on one add chain — the same
    /// lane-splitting trick as `stats::kernel`, but in exact integer
    /// arithmetic where any association order gives the same count.
    /// The reference single-word loop stays as
    /// [`RowMask::count_and_unbatched`] for the equivalence tests and
    /// the `bench_subgroup` before/after rows.
    pub fn count_and(&self, other: &RowMask) -> usize {
        debug_assert_eq!(self.n_bits, other.n_bits);
        let mut a_quads = self.words.chunks_exact(4);
        let mut b_quads = other.words.chunks_exact(4);
        let (mut c0, mut c1, mut c2, mut c3) = (0usize, 0usize, 0usize, 0usize);
        for (a, b) in a_quads.by_ref().zip(b_quads.by_ref()) {
            if let ([a0, a1, a2, a3], [b0, b1, b2, b3]) = (a, b) {
                c0 += (a0 & b0).count_ones() as usize;
                c1 += (a1 & b1).count_ones() as usize;
                c2 += (a2 & b2).count_ones() as usize;
                c3 += (a3 & b3).count_ones() as usize;
            }
        }
        let mut total = (c0 + c1) + (c2 + c3);
        for (a, b) in a_quads.remainder().iter().zip(b_quads.remainder()) {
            total += (a & b).count_ones() as usize;
        }
        total
    }

    /// Reference single-accumulator `|self ∩ other|`: one word, one
    /// popcount, one add per step. Kept as the baseline
    /// [`RowMask::count_and`] is benchmarked and equivalence-tested
    /// against.
    pub fn count_and_unbatched(&self, other: &RowMask) -> usize {
        debug_assert_eq!(self.n_bits, other.n_bits);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Whole mask popcount of `self`, single-accumulator reference for
    /// [`RowMask::count_ones`].
    pub fn count_ones_unbatched(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates the set row indices in ascending order.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rest = w;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1; // clear lowest set bit
                Some(wi * 64 + bit)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_contains_count() {
        let mut m = RowMask::zeros(130);
        assert_eq!(m.count_ones(), 0);
        for i in [0, 63, 64, 127, 129] {
            m.set(i);
        }
        assert_eq!(m.count_ones(), 5);
        assert!(m.contains(63));
        assert!(m.contains(129));
        assert!(!m.contains(1));
        assert!(!m.contains(999));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_rejects_out_of_range() {
        RowMask::zeros(10).set(10);
    }

    #[test]
    fn from_indices_and_bools_agree() {
        let flags: Vec<bool> = (0..100).map(|i| i % 7 == 0).collect();
        let a = RowMask::from_bools(&flags);
        let b = RowMask::from_indices(100, (0..100).filter(|i| i % 7 == 0));
        assert_eq!(a, b);
        assert_eq!(a.count_ones(), flags.iter().filter(|&&f| f).count());
    }

    #[test]
    fn and_into_and_count_and_match_naive_intersection() {
        let a = RowMask::from_indices(200, (0..200).filter(|i| i % 2 == 0));
        let b = RowMask::from_indices(200, (0..200).filter(|i| i % 3 == 0));
        let mut out = RowMask::zeros(200);
        a.and_into(&b, &mut out);
        let expected: Vec<usize> = (0..200).filter(|i| i % 6 == 0).collect();
        assert_eq!(out.ones().collect::<Vec<_>>(), expected);
        assert_eq!(a.count_and(&b), expected.len());
        assert_eq!(out.count_ones(), expected.len());
    }

    #[test]
    fn level_masks_partition_rows() {
        let codes = [0u32, 2, 1, 1, 0, 2, 2];
        let masks = RowMask::level_masks(&codes, 3);
        assert_eq!(masks.len(), 3);
        assert_eq!(masks[0].ones().collect::<Vec<_>>(), vec![0, 4]);
        assert_eq!(masks[1].ones().collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(masks[2].ones().collect::<Vec<_>>(), vec![1, 5, 6]);
        // the level masks are disjoint and cover every row
        let total: usize = masks.iter().map(RowMask::count_ones).sum();
        assert_eq!(total, codes.len());
        assert_eq!(masks[0].count_and(&masks[1]), 0);
    }

    #[test]
    fn ones_iterates_in_ascending_order_across_words() {
        let idx = [3usize, 64, 65, 190];
        let m = RowMask::from_indices(191, idx.iter().copied());
        assert_eq!(m.ones().collect::<Vec<_>>(), idx);
    }

    #[test]
    fn batched_counts_equal_unbatched_on_awkward_widths() {
        // Widths crossing the 4-word batch boundary: 0–3 tail words,
        // partial last words, and the empty mask.
        for n_bits in [0usize, 1, 63, 64, 65, 255, 256, 257, 300, 511, 512, 1000] {
            let a = RowMask::from_indices(n_bits, (0..n_bits).filter(|i| i % 3 == 0));
            let b = RowMask::from_indices(n_bits, (0..n_bits).filter(|i| i % 5 != 1));
            assert_eq!(a.count_ones(), a.count_ones_unbatched(), "n_bits {n_bits}");
            assert_eq!(
                a.count_and(&b),
                a.count_and_unbatched(&b),
                "n_bits {n_bits}"
            );
            assert_eq!(
                a.count_and(&b),
                (0..n_bits)
                    .filter(|&i| a.contains(i) && b.contains(i))
                    .count(),
                "n_bits {n_bits} vs naive membership scan"
            );
        }
    }

    #[test]
    fn empty_mask_over_zero_rows() {
        let m = RowMask::zeros(0);
        assert_eq!(m.count_ones(), 0);
        assert_eq!(m.ones().count(), 0);
        assert!(!m.contains(0));
    }
}
