//! Error type shared by all tabular operations.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Qualified alias for downstream crates that already have an `Error` in
/// scope (e.g. `fairbridge_engine::EngineError` wrapping this one).
pub type TabularError = Error;

/// Errors produced by dataset construction, access and I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A column with this name already exists in the dataset.
    DuplicateColumn(String),
    /// No column with this name exists.
    UnknownColumn(String),
    /// Column lengths disagree: `(column, expected, actual)`.
    LengthMismatch {
        /// Offending column name.
        column: String,
        /// Number of rows the dataset expects.
        expected: usize,
        /// Number of rows the column actually has.
        actual: usize,
    },
    /// The column exists but has a different type: `(column, expected, actual)`.
    TypeMismatch {
        /// Offending column name.
        column: String,
        /// Type the caller asked for.
        expected: &'static str,
        /// Type the column actually has.
        actual: &'static str,
    },
    /// A categorical code is out of range for its dictionary.
    CodeOutOfRange {
        /// Offending column name.
        column: String,
        /// The invalid code.
        code: u32,
        /// Number of levels in the dictionary.
        n_levels: usize,
    },
    /// A categorical level name was not found in the dictionary.
    UnknownLevel {
        /// Offending column name.
        column: String,
        /// The level that was looked up.
        level: String,
    },
    /// A row index is out of bounds.
    RowOutOfRange {
        /// The invalid row index.
        row: usize,
        /// Number of rows in the dataset.
        n_rows: usize,
    },
    /// The dataset has no column with the requested role.
    MissingRole(&'static str),
    /// Malformed CSV input: `(line, message)`.
    Csv {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// A filesystem operation failed. The OS error is carried as a
    /// rendered message (not an `io::Error`) so the enum stays `Eq`-
    /// comparable for tests and deduplication.
    Io {
        /// Path the operation targeted.
        path: String,
        /// Rendered OS error message.
        message: String,
    },
    /// Any other invalid-argument condition.
    Invalid(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DuplicateColumn(name) => write!(f, "duplicate column `{name}`"),
            Error::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            Error::LengthMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "column `{column}` has {actual} rows, expected {expected}"
            ),
            Error::TypeMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "column `{column}` has type {actual}, expected {expected}"
            ),
            Error::CodeOutOfRange {
                column,
                code,
                n_levels,
            } => write!(
                f,
                "categorical code {code} out of range for column `{column}` with {n_levels} levels"
            ),
            Error::UnknownLevel { column, level } => {
                write!(f, "level `{level}` not found in column `{column}`")
            }
            Error::RowOutOfRange { row, n_rows } => {
                write!(
                    f,
                    "row index {row} out of range for dataset with {n_rows} rows"
                )
            }
            Error::MissingRole(role) => write!(f, "dataset has no {role} column"),
            Error::Csv { line, message } => write!(f, "CSV error at line {line}: {message}"),
            Error::Io { path, message } => write!(f, "I/O error on `{path}`: {message}"),
            Error::Invalid(message) => write!(f, "invalid argument: {message}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::LengthMismatch {
            column: "age".into(),
            expected: 10,
            actual: 7,
        };
        let s = e.to_string();
        assert!(s.contains("age") && s.contains("10") && s.contains('7'));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            Error::UnknownColumn("x".into()),
            Error::UnknownColumn("x".into())
        );
        assert_ne!(
            Error::UnknownColumn("x".into()),
            Error::DuplicateColumn("x".into())
        );
    }

    #[test]
    fn error_implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::MissingRole("label"));
    }
}
