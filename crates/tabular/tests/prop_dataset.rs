//! Property-based tests for the dataset substrate.

use fairbridge_tabular::{io, Column, Dataset, GroupIndex, GroupSpec, Role};
use proptest::prelude::*;

/// Strategy: a small dataset with one categorical (protected), one
/// numeric, one boolean label column.
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (1usize..60).prop_flat_map(|n| {
        (
            proptest::collection::vec(0u32..3, n),
            proptest::collection::vec(-1e6f64..1e6, n),
            proptest::collection::vec(any::<bool>(), n),
        )
            .prop_map(|(codes, nums, labels)| {
                Dataset::builder()
                    .categorical_with_role("group", vec!["a", "b", "c"], codes, Role::Protected)
                    .numeric("x", nums)
                    .boolean_with_role("y", labels, Role::Label)
                    .build()
                    .expect("valid dataset")
            })
    })
}

proptest! {
    /// `select` preserves per-row content at the selected indices.
    #[test]
    fn select_preserves_rows(ds in dataset_strategy(), seed in 0usize..1000) {
        let n = ds.n_rows();
        let indices: Vec<usize> = (0..n).map(|i| (i * 7 + seed) % n).collect();
        let sub = ds.select(&indices).unwrap();
        prop_assert_eq!(sub.n_rows(), indices.len());
        for (new_row, &old_row) in indices.iter().enumerate() {
            prop_assert_eq!(sub.row(new_row).unwrap(), ds.row(old_row).unwrap());
        }
    }

    /// `filter(all-true)` is the identity; `filter(all-false)` is empty.
    #[test]
    fn filter_extremes(ds in dataset_strategy()) {
        let all = ds.filter(&vec![true; ds.n_rows()]).unwrap();
        prop_assert_eq!(all.n_rows(), ds.n_rows());
        prop_assert_eq!(all.labels().unwrap(), ds.labels().unwrap());
        let none = ds.filter(&vec![false; ds.n_rows()]).unwrap();
        prop_assert_eq!(none.n_rows(), 0);
    }

    /// Group sizes partition the rows exactly.
    #[test]
    fn groups_partition_rows(ds in dataset_strategy()) {
        let gi = GroupIndex::build(&ds, &GroupSpec::single("group")).unwrap();
        let total: usize = gi.sizes().iter().sum();
        prop_assert_eq!(total, ds.n_rows());
        let prop_sum: f64 = gi.proportions().iter().sum();
        prop_assert!((prop_sum - 1.0).abs() < 1e-9);
        // every row appears exactly once
        let mut seen = vec![false; ds.n_rows()];
        for (_, rows) in gi.iter() {
            for &r in rows {
                prop_assert!(!seen[r], "row {} appears twice", r);
                seen[r] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// concat(a, b) has a's rows then b's rows.
    #[test]
    fn concat_appends(a in dataset_strategy(), b in dataset_strategy()) {
        let c = a.concat(&b).unwrap();
        prop_assert_eq!(c.n_rows(), a.n_rows() + b.n_rows());
        for i in 0..a.n_rows() {
            prop_assert_eq!(c.row(i).unwrap(), a.row(i).unwrap());
        }
        for j in 0..b.n_rows() {
            prop_assert_eq!(c.row(a.n_rows() + j).unwrap(), b.row(j).unwrap());
        }
    }

    /// CSV write→read is lossless for label and group columns (floats can
    /// change representation; we compare their parsed values).
    #[test]
    fn csv_roundtrip(ds in dataset_strategy()) {
        let text = io::write_csv_string(&ds).unwrap();
        let back = io::read_csv_str(&text).unwrap();
        prop_assert_eq!(back.n_rows(), ds.n_rows());
        prop_assert_eq!(back.boolean("y").unwrap(), ds.labels().unwrap());
        // group round-trips through level names
        let (levels_a, codes_a) = ds.categorical("group").unwrap();
        let (levels_b, codes_b) = back.categorical("group").unwrap();
        for (ca, cb) in codes_a.iter().zip(codes_b) {
            prop_assert_eq!(&levels_a[*ca as usize], &levels_b[*cb as usize]);
        }
        // numeric values survive via Display/parse
        let xa = ds.numeric("x").unwrap();
        let xb = back.numeric("x").unwrap();
        for (a, b) in xa.iter().zip(xb) {
            prop_assert!((a - b).abs() <= a.abs() * 1e-12 + 1e-12);
        }
    }

    /// Adding then dropping a column returns to the original schema size.
    #[test]
    fn add_drop_inverse(ds in dataset_strategy()) {
        let with = ds
            .with_column("extra", Column::Numeric(vec![0.5; ds.n_rows()]), Role::Feature)
            .unwrap();
        prop_assert_eq!(with.n_cols(), ds.n_cols() + 1);
        let back = with.drop_column("extra").unwrap();
        prop_assert_eq!(back.n_cols(), ds.n_cols());
        prop_assert_eq!(back.labels().unwrap(), ds.labels().unwrap());
    }

    /// Column::take then to_f64 commutes with to_f64 then manual gather.
    #[test]
    fn take_commutes_with_to_f64(
        values in proptest::collection::vec(-1e3f64..1e3, 1..40),
        seed in 0usize..100,
    ) {
        let col = Column::Numeric(values.clone());
        let idx: Vec<usize> = (0..values.len()).map(|i| (i + seed) % values.len()).collect();
        let a = col.take(&idx).to_f64();
        let b: Vec<f64> = idx.iter().map(|&i| values[i]).collect();
        prop_assert_eq!(a, b);
    }
}
