//! Randomized property tests for the dataset substrate, driven by the
//! workspace's deterministic PRNG (no proptest: the build is offline).

use fairbridge_stats::rng::{Rng, StdRng};
use fairbridge_tabular::{io, Column, Dataset, GroupIndex, GroupSpec, Role};

/// A small random dataset with one categorical (protected), one numeric,
/// one boolean label column.
fn random_dataset<R: Rng>(rng: &mut R) -> Dataset {
    let n = rng.gen_range(1..60usize);
    let codes: Vec<u32> = (0..n).map(|_| rng.gen_range(0..3usize) as u32).collect();
    let nums: Vec<f64> = (0..n).map(|_| rng.gen_range(-1e6..1e6)).collect();
    let labels: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
    Dataset::builder()
        .categorical_with_role("group", vec!["a", "b", "c"], codes, Role::Protected)
        .numeric("x", nums)
        .boolean_with_role("y", labels, Role::Label)
        .build()
        .expect("valid dataset")
}

const CASES: usize = 48;

/// `select` preserves per-row content at the selected indices.
#[test]
fn select_preserves_rows() {
    let mut rng = StdRng::seed_from_u64(0xD5_01);
    for case in 0..CASES {
        let ds = random_dataset(&mut rng);
        let n = ds.n_rows();
        let indices: Vec<usize> = (0..n).map(|i| (i * 7 + case) % n).collect();
        let sub = ds.select(&indices).unwrap();
        assert_eq!(sub.n_rows(), indices.len());
        for (new_row, &old_row) in indices.iter().enumerate() {
            assert_eq!(sub.row(new_row).unwrap(), ds.row(old_row).unwrap());
        }
    }
}

/// `filter(all-true)` is the identity; `filter(all-false)` is empty.
#[test]
fn filter_extremes() {
    let mut rng = StdRng::seed_from_u64(0xD5_02);
    for _ in 0..CASES {
        let ds = random_dataset(&mut rng);
        let all = ds.filter(&vec![true; ds.n_rows()]).unwrap();
        assert_eq!(all.n_rows(), ds.n_rows());
        assert_eq!(all.labels().unwrap(), ds.labels().unwrap());
        let none = ds.filter(&vec![false; ds.n_rows()]).unwrap();
        assert_eq!(none.n_rows(), 0);
    }
}

/// Group sizes partition the rows exactly.
#[test]
fn groups_partition_rows() {
    let mut rng = StdRng::seed_from_u64(0xD5_03);
    for _ in 0..CASES {
        let ds = random_dataset(&mut rng);
        let gi = GroupIndex::build(&ds, &GroupSpec::single("group")).unwrap();
        let total: usize = gi.sizes().iter().sum();
        assert_eq!(total, ds.n_rows());
        let prop_sum: f64 = gi.proportions().iter().sum();
        assert!((prop_sum - 1.0).abs() < 1e-9);
        // every row appears exactly once
        let mut seen = vec![false; ds.n_rows()];
        for (_, rows) in gi.iter() {
            for &r in rows {
                assert!(!seen[r], "row {r} appears twice");
                seen[r] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}

/// concat(a, b) has a's rows then b's rows.
#[test]
fn concat_appends() {
    let mut rng = StdRng::seed_from_u64(0xD5_04);
    for _ in 0..CASES {
        let a = random_dataset(&mut rng);
        let b = random_dataset(&mut rng);
        let c = a.concat(&b).unwrap();
        assert_eq!(c.n_rows(), a.n_rows() + b.n_rows());
        for i in 0..a.n_rows() {
            assert_eq!(c.row(i).unwrap(), a.row(i).unwrap());
        }
        for j in 0..b.n_rows() {
            assert_eq!(c.row(a.n_rows() + j).unwrap(), b.row(j).unwrap());
        }
    }
}

/// CSV write→read is lossless for label and group columns (floats can
/// change representation; we compare their parsed values).
#[test]
fn csv_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xD5_05);
    for _ in 0..CASES {
        let ds = random_dataset(&mut rng);
        let text = io::write_csv_string(&ds).unwrap();
        let back = io::read_csv_str(&text).unwrap();
        assert_eq!(back.n_rows(), ds.n_rows());
        assert_eq!(back.boolean("y").unwrap(), ds.labels().unwrap());
        // group round-trips through level names
        let (levels_a, codes_a) = ds.categorical("group").unwrap();
        let (levels_b, codes_b) = back.categorical("group").unwrap();
        for (ca, cb) in codes_a.iter().zip(codes_b) {
            assert_eq!(&levels_a[*ca as usize], &levels_b[*cb as usize]);
        }
        // numeric values survive via Display/parse
        let xa = ds.numeric("x").unwrap();
        let xb = back.numeric("x").unwrap();
        for (a, b) in xa.iter().zip(xb) {
            assert!((a - b).abs() <= a.abs() * 1e-12 + 1e-12);
        }
    }
}

/// Adding then dropping a column returns to the original schema size.
#[test]
fn add_drop_inverse() {
    let mut rng = StdRng::seed_from_u64(0xD5_06);
    for _ in 0..CASES {
        let ds = random_dataset(&mut rng);
        let with = ds
            .with_column(
                "extra",
                Column::Numeric(vec![0.5; ds.n_rows()]),
                Role::Feature,
            )
            .unwrap();
        assert_eq!(with.n_cols(), ds.n_cols() + 1);
        let back = with.drop_column("extra").unwrap();
        assert_eq!(back.n_cols(), ds.n_cols());
        assert_eq!(back.labels().unwrap(), ds.labels().unwrap());
    }
}

/// Column::take then to_f64 commutes with to_f64 then manual gather.
#[test]
fn take_commutes_with_to_f64() {
    let mut rng = StdRng::seed_from_u64(0xD5_07);
    for seed in 0..CASES {
        let len = rng.gen_range(1..40usize);
        let values: Vec<f64> = (0..len).map(|_| rng.gen_range(-1e3..1e3)).collect();
        let col = Column::Numeric(values.clone());
        let idx: Vec<usize> = (0..values.len())
            .map(|i| (i + seed) % values.len())
            .collect();
        let a = col.take(&idx).to_f64();
        let b: Vec<f64> = idx.iter().map(|&i| values[i]).collect();
        assert_eq!(a, b);
    }
}
