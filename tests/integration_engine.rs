//! Integration: the sharded execution engine against the sequential audit
//! pipeline, mergeable-accumulator algebra, and the streaming monitor
//! wired to the Section IV.D feedback-loop simulation.

use fairbridge::audit::feedback::{run_feedback_loop_observed, FeedbackConfig};
use fairbridge::engine::{
    AuditSpec, Engine, EngineConfig, GroupAccumulator, MonitorConfig, StreamingMonitor,
};
use fairbridge::prelude::*;
use fairbridge::stats::rng::StdRng;
use fairbridge::synth::hiring::{self, HiringConfig};
use fairbridge::synth::intersectional::{self, IntersectionalConfig};

/// Every shared piece of two audit reports must agree — and the metric
/// numbers must agree *bitwise*, not just within tolerance.
fn assert_reports_identical(seq: &AuditReport, par: &AuditReport, context: &str) {
    assert_eq!(seq.metrics, par.metrics, "{context}: metrics differ");
    for (a, b) in seq.metrics.lines.iter().zip(&par.metrics.lines) {
        assert_eq!(
            a.gap.to_bits(),
            b.gap.to_bits(),
            "{context}: gap bits differ for {:?}",
            a.definition
        );
    }
    assert_eq!(
        seq.metrics.impact_ratio.to_bits(),
        par.metrics.impact_ratio.to_bits(),
        "{context}: impact ratio bits differ"
    );
    // Debug rendering compares NaN fields (NaN != NaN under PartialEq).
    assert_eq!(
        format!("{:?}", seq.proxies),
        format!("{:?}", par.proxies),
        "{context}: proxies differ"
    );
    assert_eq!(
        seq.flagged_proxies, par.flagged_proxies,
        "{context}: flags differ"
    );
    assert_eq!(seq.subgroups, par.subgroups, "{context}: subgroups differ");
    assert_eq!(
        seq.to_string(),
        par.to_string(),
        "{context}: rendered reports differ"
    );
}

#[test]
fn parallel_audit_matches_sequential_on_hiring() {
    let mut rng = StdRng::seed_from_u64(0xE1_01);
    let data = hiring::generate(
        &HiringConfig {
            n: 6000,
            ..HiringConfig::biased()
        },
        &mut rng,
    );
    let config = AuditConfig {
        population_marginals: Some(vec![0.5, 0.5]),
        ..AuditConfig::default()
    };
    let sequential = AuditPipeline::new(config.clone())
        .run(&data.dataset, &["sex"], true)
        .unwrap();
    let spec = AuditSpec {
        config,
        ..AuditSpec::new(&["sex"], true)
    };
    for threads in [1, 2, 8] {
        let engine = Engine::new(EngineConfig {
            num_threads: threads,
            shard_size: 512, // forces 12 shards on 6000 rows
            ..EngineConfig::default()
        });
        let parallel = engine.audit(&data.dataset, &spec).unwrap();
        assert_reports_identical(&sequential, &parallel, &format!("hiring/{threads}t"));
    }
}

#[test]
fn parallel_audit_matches_sequential_on_intersectional() {
    let mut rng = StdRng::seed_from_u64(0xE1_02);
    let ds = intersectional::generate(
        &IntersectionalConfig {
            n: 8000,
            ..IntersectionalConfig::default()
        },
        &mut rng,
    );
    let sequential = AuditPipeline::new(AuditConfig::default())
        .run(&ds, &["gender", "race"], true)
        .unwrap();
    let spec = AuditSpec::new(&["gender", "race"], true);
    for threads in [1, 2, 8] {
        let engine = Engine::new(EngineConfig {
            num_threads: threads,
            shard_size: 1024,
            ..EngineConfig::default()
        });
        let parallel = engine.audit(&ds, &spec).unwrap();
        assert_reports_identical(
            &sequential,
            &parallel,
            &format!("intersectional/{threads}t"),
        );
    }
}

#[test]
fn parallel_audit_matches_sequential_with_labels_and_predictions() {
    // Auditing a prediction column with ground truth attached exercises
    // the full six-definition metric path through the accumulator.
    let mut rng = StdRng::seed_from_u64(0xE1_03);
    let data = hiring::generate(
        &HiringConfig {
            n: 5000,
            ..HiringConfig::biased()
        },
        &mut rng,
    );
    let decisions: Vec<bool> = (0..data.dataset.n_rows())
        .map(|i| (i * 13 + 5) % 7 < 3)
        .collect();
    let ds = data
        .dataset
        .with_predictions("decision", decisions)
        .unwrap();
    let sequential = AuditPipeline::new(AuditConfig::default())
        .run(&ds, &["sex"], false)
        .unwrap();
    assert_eq!(sequential.metrics.lines.len(), 6, "labels must be in play");
    let spec = AuditSpec::new(&["sex"], false);
    for threads in [1, 2, 8] {
        let engine = Engine::new(EngineConfig {
            num_threads: threads,
            shard_size: 333, // uneven final shard
            ..EngineConfig::default()
        });
        let parallel = engine.audit(&ds, &spec).unwrap();
        assert_reports_identical(&sequential, &parallel, &format!("predictions/{threads}t"));
    }
}

/// A small fixed event pool: (group index, prediction, label) over groups
/// {a, b}, mixing all confusion cells.
fn event_pool() -> Vec<(usize, bool, bool)> {
    vec![
        (0, true, true),
        (0, true, false),
        (0, false, true),
        (1, false, false),
        (1, true, true),
        (1, false, true),
    ]
}

fn acc_of(events: &[(usize, bool, bool)]) -> GroupAccumulator {
    let keys = vec![
        GroupKey(vec!["a".to_owned()]),
        GroupKey(vec!["b".to_owned()]),
    ];
    let mut acc = GroupAccumulator::with_keys(keys, true).unwrap();
    for &(g, p, y) in events {
        acc.observe(g, p, Some(y));
    }
    acc
}

#[test]
fn merge_is_associative_and_commutative_in_effect() {
    let events = event_pool();
    let whole = acc_of(&events);
    // Exhaustively assign each of the 6 events to one of 3 shards
    // (3^6 = 729 assignments) and check both association orders and the
    // reversed merge order against the single-pass accumulator.
    for assignment in 0..3usize.pow(6) {
        let mut shards: [Vec<(usize, bool, bool)>; 3] = Default::default();
        let mut a = assignment;
        for &e in &events {
            shards[a % 3].push(e);
            a /= 3;
        }
        let [sa, sb, sc] = shards;
        let (a, b, c) = (acc_of(&sa), acc_of(&sb), acc_of(&sc));

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b).unwrap();
        left.merge(&c).unwrap();
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c).unwrap();
        let mut right = a.clone();
        right.merge(&bc).unwrap();
        // c ⊕ b ⊕ a
        let mut rev = c.clone();
        rev.merge(&b).unwrap();
        rev.merge(&a).unwrap();

        assert_eq!(left, right, "associativity, assignment {assignment}");
        assert_eq!(
            left, rev,
            "commutativity in effect, assignment {assignment}"
        );
        assert_eq!(left, whole, "split/merge vs single pass, {assignment}");
    }
}

#[test]
fn streaming_monitor_detects_feedback_loop_drift() {
    // Monitor the raw decision stream of the paper's Section IV.D loop:
    // a biased seed model, retrained each generation on its own output.
    // Group code 0 = "male", 1 = "female" (the simulator's level order).
    let mut monitor = StreamingMonitor::over_levels(
        &["male", "female"],
        false,
        MonitorConfig {
            window_size: 400,
            retained_windows: 64, // retain the whole stream
            drift_threshold: 0.10,
            ..MonitorConfig::default()
        },
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(71);
    let outcome = run_feedback_loop_observed(
        &FeedbackConfig::default(),
        &mut rng,
        |_, codes, decisions| {
            monitor.ingest_batch(codes, decisions, None).unwrap();
        },
    )
    .unwrap();

    // The loop itself sustains a disparity ...
    assert!(outcome.mean_gap() > 0.1, "loop gap {}", outcome.mean_gap());
    // ... and the monitor saw it live: several windows sealed, and the
    // parity gap breached the threshold in consecutive windows.
    assert!(
        monitor.windows_sealed() >= 8,
        "{} windows",
        monitor.windows_sealed()
    );
    let snap = monitor.snapshot();
    assert!(
        snap.drift,
        "drift flag not raised; gaps: {:?}",
        snap.windows
            .iter()
            .map(|w| w.parity_gap)
            .collect::<Vec<_>>()
    );
    assert!(snap.latest_gap().is_finite());
    // every sealed window carries a full windowed metric evaluation
    assert!(snap.windows.iter().all(|w| !w.report.lines.is_empty()));
}

#[test]
fn engine_is_exposed_through_the_prelude() {
    // AuditSpec/Engine/StreamingMonitor are prelude names (spot-check).
    let _ = EngineConfig::with_threads(2);
    let spec = AuditSpec::new(&["sex"], true);
    assert!(spec.use_labels);
    let _ = MonitorConfig::default();
}
