//! Integration tests for the mitigation stack: each intervention point
//! measurably reduces the planted bias on held-out data, with the
//! accuracy cost visible (the Section IV.A trade-off).

use fairbridge::learn::eval::accuracy;
use fairbridge::learn::split::train_test_split;
use fairbridge::mitigate::inprocess::FairLogisticTrainer;
use fairbridge::mitigate::massage::massage;
use fairbridge::mitigate::ot::repair_dataset;
use fairbridge::mitigate::quota::{quota_select, QuotaPolicy};
use fairbridge::prelude::*;
use fairbridge_stats::rng::StdRng;

fn hiring(seed: u64, n: usize) -> (Dataset, Dataset) {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = fairbridge::synth::hiring::generate(
        &HiringConfig {
            n,
            ..HiringConfig::biased()
        },
        &mut rng,
    );
    train_test_split(&data.dataset, 0.3, &mut rng).unwrap()
}

fn parity_gap_of(test: &Dataset, preds: Vec<bool>) -> f64 {
    let annotated = test.with_predictions("pred", preds).unwrap();
    let o = Outcomes::from_dataset(&annotated, &["sex"]).unwrap();
    demographic_parity(&o, 0).summary.gap
}

fn baseline_model(train: &Dataset) -> TrainedModel {
    let (enc, x) = FeatureEncoder::fit_transform(train, EncoderConfig::default()).unwrap();
    let model = LogisticTrainer::default().fit(&x, train.labels().unwrap());
    TrainedModel::new(enc, Box::new(model))
}

#[test]
fn reweighing_reduces_heldout_gap() {
    let (train, test) = hiring(201, 8000);
    let base = baseline_model(&train);
    let gap_base = parity_gap_of(&test, base.predict_dataset(&test).unwrap());

    let rw = reweigh(&train, &["sex"]).unwrap();
    let (enc, x) = FeatureEncoder::fit_transform(&rw.dataset, EncoderConfig::default()).unwrap();
    let model = LogisticTrainer::default().fit_weighted(
        &x,
        rw.dataset.labels().unwrap(),
        &rw.dataset.weights(),
    );
    let trained = TrainedModel::new(enc, Box::new(model));
    let gap_rw = parity_gap_of(&test, trained.predict_dataset(&test).unwrap());
    assert!(gap_rw < gap_base, "baseline {gap_base}, reweighed {gap_rw}");
}

#[test]
fn massaging_reduces_heldout_gap() {
    let (train, test) = hiring(202, 8000);
    let base = baseline_model(&train);
    let gap_base = parity_gap_of(&test, base.predict_dataset(&test).unwrap());

    // Rank by the baseline model's own scores, as the original algorithm
    // prescribes.
    let scores = base.score_dataset(&train).unwrap();
    let massaged = massage(&train, "sex", &scores).unwrap();
    let repaired_model = baseline_model(&massaged.dataset);
    let gap_m = parity_gap_of(&test, repaired_model.predict_dataset(&test).unwrap());
    assert!(gap_m < gap_base, "baseline {gap_base}, massaged {gap_m}");
}

#[test]
fn group_thresholds_repair_either_objective() {
    let (train, test) = hiring(203, 8000);
    let base = baseline_model(&train);
    let train_scores = base.score_dataset(&train).unwrap();
    let test_scores = base.score_dataset(&test).unwrap();

    for objective in [
        ThresholdObjective::DemographicParity,
        ThresholdObjective::EqualOpportunity,
    ] {
        let gt = GroupThresholds::fit(&train, &["sex"], &train_scores, objective).unwrap();
        let preds = gt.apply(&test, &["sex"], &test_scores).unwrap();
        match objective {
            ThresholdObjective::DemographicParity => {
                let gap = parity_gap_of(&test, preds);
                assert!(gap < 0.08, "post-repair parity gap {gap}");
            }
            ThresholdObjective::EqualOpportunity => {
                let annotated = test.with_predictions("pred", preds).unwrap();
                let o = Outcomes::from_dataset(&annotated, &["sex"]).unwrap();
                let eo = fairbridge::metrics::opportunity::equal_opportunity(&o, 0).unwrap();
                assert!(
                    eo.summary.gap < 0.1,
                    "post-repair TPR gap {}",
                    eo.summary.gap
                );
            }
        }
    }
}

#[test]
fn fair_regularization_trades_accuracy_for_parity() {
    let (train, test) = hiring(204, 6000);
    let cfg = EncoderConfig::default();
    let (_enc, x) = FeatureEncoder::fit_transform(&train, cfg.clone()).unwrap();
    let y = train.labels().unwrap();
    let (_, sex_codes) = train.categorical("sex").unwrap();
    let indicator: Vec<bool> = sex_codes.iter().map(|&c| c == 1).collect();

    let plain = FairLogisticTrainer {
        fairness_weight: 0.0,
        ..FairLogisticTrainer::default()
    }
    .fit(&x, y, &indicator);
    let fair = FairLogisticTrainer {
        fairness_weight: 50.0,
        ..FairLogisticTrainer::default()
    }
    .fit(&x, y, &indicator);

    let eval = |model: fairbridge::learn::LogisticModel| {
        let trained = TrainedModel::new(
            FeatureEncoder::fit(&train, cfg.clone()).unwrap(),
            Box::new(model),
        );
        let preds = trained.predict_dataset(&test).unwrap();
        let acc = accuracy(test.labels().unwrap(), &preds);
        (parity_gap_of(&test, preds), acc)
    };
    let (gap_plain, acc_plain) = eval(plain);
    let (gap_fair, acc_fair) = eval(fair);
    assert!(gap_fair < gap_plain, "plain {gap_plain}, fair {gap_fair}");
    // accuracy against the *biased* labels can only suffer
    assert!(acc_fair <= acc_plain + 0.02);
}

#[test]
fn quota_selection_guarantees_representation() {
    let (train, _) = hiring(205, 3000);
    let base = baseline_model(&train);
    let scores = base.score_dataset(&train).unwrap();
    let capacity = train.n_rows() / 4;
    let sel = quota_select(
        &train,
        &["sex"],
        &scores,
        capacity,
        &QuotaPolicy::Proportional,
    )
    .unwrap();
    let (_, sex) = train.categorical("sex").unwrap();
    let females_total = sex.iter().filter(|&&c| c == 1).count();
    let females_selected = sel
        .selected
        .iter()
        .zip(sex)
        .filter(|(&s, &c)| s && c == 1)
        .count();
    let female_share = females_total as f64 / train.n_rows() as f64;
    let guaranteed = (female_share * capacity as f64).floor() as usize;
    assert!(females_selected >= guaranteed);
    assert_eq!(sel.selected.iter().filter(|&&s| s).count(), capacity);
}

#[test]
fn quantile_repair_strips_proxy_information() {
    use fairbridge::stats::correlation::point_biserial;
    let (train, _) = hiring(206, 6000);
    // experience correlates with qualification, which correlates with the
    // label; after repairing it toward the barycenter, its sex-association
    // vanishes while order within groups is preserved.
    let repaired = repair_dataset(&train, "sex", &["experience", "skill_score"], 1.0).unwrap();
    let (_, sex) = repaired.categorical("sex").unwrap();
    let indicator: Vec<bool> = sex.iter().map(|&c| c == 1).collect();
    let exp = repaired.numeric("experience").unwrap();
    let assoc = point_biserial(exp, &indicator).abs();
    assert!(assoc < 0.05, "post-repair sex association {assoc}");
}
