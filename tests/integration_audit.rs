//! Integration tests for the Section IV audit machinery: each criterion's
//! phenomenon is planted by a generator and recovered by the audit.

use fairbridge::audit::feedback::{run_feedback_loop, FeedbackConfig, MitigationHook};
use fairbridge::audit::manipulation::{coefficient_importance, detect_masking, MaskingAttack};
use fairbridge::audit::proxy::unawareness_experiment;
use fairbridge::audit::subgroup::SubgroupAuditor;
use fairbridge::learn::matrix::Matrix;
use fairbridge::learn::Scorer;
use fairbridge::prelude::*;
use fairbridge::stats::sampling::{discrete_convergence, DistanceKind};
use fairbridge::stats::Discrete;
use fairbridge_stats::rng::StdRng;

/// IV.B: the proxy channel keeps the bias alive after attribute removal.
#[test]
fn criterion_iv_b_proxy_keeps_bias_alive() {
    let mut rng = StdRng::seed_from_u64(301);
    let data = fairbridge::synth::hiring::generate(
        &HiringConfig {
            n: 10_000,
            bias_against_female: 0.4,
            proxy_strength: 0.95,
            ..HiringConfig::default()
        },
        &mut rng,
    );
    let exp = unawareness_experiment(&data.dataset, "sex", &mut rng).unwrap();
    assert!(exp.gap_aware > 0.1);
    assert!(
        exp.bias_retention() > 0.4,
        "retention {}",
        exp.bias_retention()
    );
}

/// IV.C: the subgroup auditor finds the planted gerrymander; marginal
/// audits do not.
#[test]
fn criterion_iv_c_subgroup_audit_beats_marginal() {
    let mut rng = StdRng::seed_from_u64(302);
    let ds = fairbridge::synth::intersectional::generate(
        &IntersectionalConfig {
            n: 10_000,
            ..IntersectionalConfig::default()
        },
        &mut rng,
    );
    for attr in ["gender", "race"] {
        let o = Outcomes::from_labels_as_decisions(&ds, &[attr]).unwrap();
        assert!(demographic_parity(&o, 0).summary.gap < 0.05, "{attr}");
    }
    let findings = SubgroupAuditor::default()
        .audit_dataset(&ds, &["gender", "race"], true)
        .unwrap();
    let top = &findings[0];
    assert_eq!(top.conditions.len(), 2);
    assert!(top.gap.abs() > 0.2);
}

/// IV.D: the loop amplifies; mitigation dampens.
#[test]
fn criterion_iv_d_feedback_loop_mitigation() {
    let run = |mitigated: bool| {
        let mut rng = StdRng::seed_from_u64(303);
        let config = FeedbackConfig {
            generations: 6,
            pool_size: 1000,
            mitigation: mitigated.then(|| {
                Box::new(|ds: &Dataset| reweigh(ds, &["group"]).map(|r| r.dataset))
                    as MitigationHook
            }),
            ..FeedbackConfig::default()
        };
        run_feedback_loop(&config, &mut rng).unwrap()
    };
    let plain = run(false);
    let fixed = run(true);
    assert!(plain.final_gap() > fixed.final_gap());
    assert!(fixed.final_disadvantaged_share() >= plain.final_disadvantaged_share() - 0.02);
}

/// IV.E: the masking attack beats explainers but not the outcome audit.
#[test]
fn criterion_iv_e_masking_detected() {
    let mut rows = Vec::new();
    let mut y = Vec::new();
    let mut group = Vec::new();
    for i in 0..400 {
        let female = i % 2 == 1;
        let merit = (i % 10) as f64 / 10.0;
        rows.push(vec![
            if female { 1.0 } else { 0.0 },
            if female { 1.0 } else { 0.0 }, // proxy
            merit,
        ]);
        y.push(if female { merit > 0.7 } else { merit > 0.3 });
        group.push(female);
    }
    let x = Matrix::from_rows(&rows);
    let names = vec![
        "sex=female".to_owned(),
        "uni=metro".to_owned(),
        "merit".to_owned(),
    ];
    let masked = MaskingAttack {
        target_features: vec![0],
        mu: 500.0,
        ..MaskingAttack::default()
    }
    .train(&x, &y);
    let imp = coefficient_importance(&masked, &names);
    // explainer fooled about the sensitive attribute itself
    assert!(imp.of("sex=female").unwrap() < 0.05);

    // outcome audit still sees the gap
    let (mut p0, mut n0, mut p1, mut n1) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (i, row) in x.rows().enumerate() {
        let sel = masked.score(row) >= 0.5;
        if group[i] {
            n1 += 1.0;
            if sel {
                p1 += 1.0;
            }
        } else {
            n0 += 1.0;
            if sel {
                p0 += 1.0;
            }
        }
    }
    let gap = (p0 / n0 - p1 / n1).abs();
    assert!(gap > 0.2, "gap {gap}");
    let verdict = detect_masking(&imp, &["sex=female"], gap, 0.1, 0.15);
    assert!(verdict.suspicious);
}

/// IV.F: bias-detection error decays at ~n^(−1/2) and the Wilson interval
/// widths shrink accordingly.
#[test]
fn criterion_iv_f_sample_complexity() {
    let mut rng = StdRng::seed_from_u64(305);
    let population = Discrete::new(vec![0.5, 0.5]).unwrap();
    let sample_dist = Discrete::new(vec![0.65, 0.35]).unwrap();
    let study = discrete_convergence(
        DistanceKind::Hellinger,
        &population,
        &sample_dist,
        &[100, 1000, 10_000],
        25,
        &mut rng,
    );
    assert!(study.rows[0].mean_abs_error > study.rows[2].mean_abs_error);
    let slope = study.loglog_slope();
    assert!(slope < -0.3 && slope > -0.8, "slope {slope}");

    // Wilson interval width halves with 4x the sample.
    use fairbridge::stats::hypothesis::wilson_interval;
    let (lo1, hi1) = wilson_interval(30, 100, 0.95);
    let (lo2, hi2) = wilson_interval(120, 400, 0.95);
    assert!((hi2 - lo2) < (hi1 - lo1) * 0.6);
}

/// The pipeline ties IV.B and IV.C together in one call.
#[test]
fn composite_pipeline_over_credit_data() {
    let mut rng = StdRng::seed_from_u64(306);
    let data = fairbridge::synth::credit::generate(
        &fairbridge::synth::credit::CreditConfig {
            n: 8000,
            ..fairbridge::synth::credit::CreditConfig::biased()
        },
        &mut rng,
    );
    let report = fairbridge::audit::AuditPipeline::new(fairbridge::audit::AuditConfig::default())
        .run(&data.dataset, &["age_group", "race"], true)
        .unwrap();
    assert!(report.has_concerns());
    // residence flagged as a race proxy is only checked when race is the
    // first protected column; here age_group is first, so assert the
    // subgroup audit found intersections instead.
    assert!(!report.subgroups.is_empty());
}
