//! Integration: the telemetry subsystem wired through the whole stack —
//! span nesting across engine and pipeline, the per-shard event trail,
//! cache hit/miss records, drift alarms, counter atomicity under real
//! threads, the JSONL round trip, and the disabled-path guarantee.

use fairbridge::engine::{AuditSpec, Engine, EngineConfig, MonitorConfig, StreamingMonitor};
use fairbridge::obs::{json, Event, EventKind, FairnessEvent, JsonlSink, RingSink, Telemetry};
use fairbridge::prelude::*;
use fairbridge::stats::rng::StdRng;
use fairbridge::synth::hiring::{self, HiringConfig};
use std::sync::Arc;

fn hiring_ds(n: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(0x7E1E);
    hiring::generate(
        &HiringConfig {
            n,
            ..HiringConfig::biased()
        },
        &mut rng,
    )
    .dataset
}

/// Records two audits of the same dataset and returns the event trail.
fn traced_audits(n: usize, shard_size: usize, threads: usize) -> Vec<Event> {
    let ring = Arc::new(RingSink::with_capacity(8192));
    let engine = Engine::with_telemetry(
        EngineConfig {
            num_threads: threads,
            shard_size,
            ..EngineConfig::default()
        },
        Telemetry::new(ring.clone()),
    );
    let ds = hiring_ds(n);
    let spec = AuditSpec::new(&["sex"], true);
    engine.audit(&ds, &spec).expect("first audit");
    engine.audit(&ds, &spec).expect("second audit");
    ring.events()
}

fn span_names(events: &[Event]) -> Vec<&str> {
    events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::SpanStart { name } => Some(name.as_str()),
            _ => None,
        })
        .collect()
}

#[test]
fn audit_emits_the_expected_event_sequence() {
    let n = 4000;
    let shard_size = 512;
    let events = traced_audits(n, shard_size, 2);

    // The first fairness event of the trail is the audit announcement.
    let first_fairness = events
        .iter()
        .find_map(|e| match &e.kind {
            EventKind::Fairness(f) => Some(f),
            _ => None,
        })
        .expect("fairness events present");
    assert!(
        matches!(first_fairness, FairnessEvent::AuditStarted { rows, .. } if *rows == n),
        "{first_fairness:?}"
    );

    // One shard_scanned per shard, per audit; the per-shard rows sum to n.
    let shards_per_audit = n.div_ceil(shard_size);
    let scanned: Vec<(usize, usize)> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Fairness(FairnessEvent::ShardScanned { shard, rows, .. }) => {
                Some((*shard, *rows))
            }
            _ => None,
        })
        .collect();
    assert_eq!(scanned.len(), 2 * shards_per_audit);
    let total_rows: usize = scanned[..shards_per_audit].iter().map(|(_, r)| r).sum();
    assert_eq!(total_rows, n);

    // The first audit misses the partition cache, the second hits it —
    // on the same fingerprint.
    let cache: Vec<(&str, u64)> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Fairness(FairnessEvent::PartitionCacheMiss { fingerprint }) => {
                Some(("miss", *fingerprint))
            }
            EventKind::Fairness(FairnessEvent::PartitionCacheHit { fingerprint }) => {
                Some(("hit", *fingerprint))
            }
            _ => None,
        })
        .collect();
    assert_eq!(cache.len(), 2);
    assert_eq!((cache[0].0, cache[1].0), ("miss", "hit"));
    assert_eq!(cache[0].1, cache[1].1, "same dataset, same fingerprint");
}

#[test]
fn audit_spans_are_balanced_nested_and_cover_the_pipeline_stages() {
    let events = traced_audits(2000, 512, 2);
    let names = span_names(&events);

    // Engine phases and sequential pipeline stages all appear.
    for expected in [
        "engine.audit",
        "engine.partition",
        "engine.scan",
        "engine.merge",
        "engine.finalize",
        "engine.support_stages",
        "pipeline.proxy",
        "pipeline.subgroup",
        "pipeline.representation",
    ] {
        assert!(names.contains(&expected), "missing span {expected}");
    }

    // Every span_start has exactly one span_end with the same id.
    let mut starts = 0usize;
    for e in &events {
        if let EventKind::SpanStart { name } = &e.kind {
            starts += 1;
            let id = e.span.expect("span_start carries its id");
            let ends: Vec<&Event> = events
                .iter()
                .filter(|o| o.span == Some(id) && matches!(o.kind, EventKind::SpanEnd { .. }))
                .collect();
            assert_eq!(ends.len(), 1, "span {name} ({id}) must close once");
        }
    }
    assert!(starts >= 9, "at least one start per expected span");

    // Phase spans are children of their audit's engine.audit root.
    let roots: Vec<u64> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::SpanStart { name } if name == "engine.audit" => e.span,
            _ => None,
        })
        .collect();
    assert_eq!(roots.len(), 2, "two audits, two roots");
    for e in &events {
        if let EventKind::SpanStart { name } = &e.kind {
            if name.starts_with("engine.") && name != "engine.audit" {
                let parent = e.parent.expect("phase spans have parents");
                assert!(roots.contains(&parent), "{name} parented to an audit root");
            }
        }
    }
}

#[test]
fn counters_are_exact_under_concurrent_increments() {
    let telemetry = Telemetry::new(Arc::new(RingSink::with_capacity(8)));
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let t = telemetry.clone();
            scope.spawn(move || {
                let c = t.counter("contended");
                for _ in 0..10_000 {
                    c.incr();
                }
            });
        }
    });
    assert_eq!(
        telemetry.counter_values(),
        vec![("contended".to_owned(), 80_000)]
    );
}

#[test]
fn the_jsonl_trail_round_trips_through_the_parser() {
    let path = std::env::temp_dir().join(format!(
        "fairbridge_integration_trail_{}.jsonl",
        std::process::id()
    ));
    let telemetry = Telemetry::new(Arc::new(JsonlSink::create(&path).unwrap()));
    let engine = Engine::with_telemetry(
        EngineConfig {
            num_threads: 2,
            shard_size: 256,
            ..EngineConfig::default()
        },
        telemetry.clone(),
    );
    let ds = hiring_ds(1500);
    engine
        .audit(&ds, &AuditSpec::new(&["sex"], true))
        .expect("audit");
    telemetry.flush();

    let raw = std::fs::read_to_string(&path).unwrap();
    let values = json::parse_lines(&raw).expect("every line parses");
    assert_eq!(values.len() as u64, telemetry.events_emitted());
    // Envelope fields are present and typed on every event.
    for v in &values {
        assert!(v.get("t_ns").and_then(json::Value::as_u64).is_some());
        assert!(v.get("thread").and_then(json::Value::as_u64).is_some());
        assert!(v.get("kind").and_then(json::Value::as_str).is_some());
    }
    // The audit announcement survives the round trip with its payload.
    let started = values
        .iter()
        .find(|v| v.get("kind").and_then(json::Value::as_str) == Some("audit_started"))
        .expect("audit_started in trail");
    assert_eq!(
        started.get("rows").and_then(json::Value::as_u64),
        Some(1500)
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn disabled_telemetry_emits_nothing_through_the_whole_stack() {
    let engine = Engine::new(EngineConfig {
        num_threads: 2,
        shard_size: 256,
        ..EngineConfig::default()
    });
    let ds = hiring_ds(1500);
    engine
        .audit(&ds, &AuditSpec::new(&["sex"], true))
        .expect("audit");

    let mut monitor = StreamingMonitor::over_levels(
        &["male", "female"],
        false,
        MonitorConfig {
            window_size: 100,
            ..MonitorConfig::default()
        },
    )
    .unwrap();
    for i in 0..500u32 {
        monitor.ingest_indexed((i % 2) as usize, i % 3 == 0, None);
    }

    assert_eq!(engine.telemetry().events_emitted(), 0);
    assert!(engine.telemetry().counter_values().is_empty());
    assert!(!engine.telemetry().is_enabled());
}

#[test]
fn monitor_trail_records_window_closes_and_a_single_drift_alarm() {
    let ring = Arc::new(RingSink::with_capacity(512));
    let mut monitor = StreamingMonitor::over_levels(
        &["a", "b"],
        false,
        MonitorConfig {
            window_size: 200,
            retained_windows: 8,
            drift_threshold: 0.10,
            ..MonitorConfig::default()
        },
    )
    .unwrap()
    .with_telemetry(Telemetry::new(ring.clone()));

    // fair, fair, breach, breach, breach — the alarm fires once, at the
    // second consecutive breach.
    for gap in [0.0f64, 0.0, 0.3, 0.3, 0.3] {
        for i in 0..100usize {
            let t = i as f64 / 100.0;
            monitor.ingest_indexed(0, t < 0.5 + gap / 2.0, None);
            monitor.ingest_indexed(1, t < 0.5 - gap / 2.0, None);
        }
    }

    let events = ring.events();
    let closed = events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::Fairness(FairnessEvent::WindowClosed { .. })
            )
        })
        .count();
    assert_eq!(closed, 5, "one window_closed per sealed window");
    let alarms: Vec<usize> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Fairness(FairnessEvent::DriftFlagged { window, .. }) => Some(*window),
            _ => None,
        })
        .collect();
    assert_eq!(alarms, vec![3], "single alarm at the second breach");
    assert!(monitor.snapshot().drift, "snapshot agrees with the trail");
}
