//! Integration tests for the extension layer: representation audit,
//! association spillover, individual fairness, calibration, forests,
//! reject-option repair, cross-validation, Sinkhorn OT, guidelines and
//! the compliance report — all through the `fairbridge` facade.

use fairbridge::audit::association::association_audit;
use fairbridge::audit::representation::representation_audit;
use fairbridge::learn::calibrate::IsotonicCalibrator;
use fairbridge::learn::cv::{cross_validate, logistic_trainer};
use fairbridge::learn::eval::{accuracy, expected_calibration_error};
use fairbridge::learn::forest::ForestTrainer;
use fairbridge::metrics::individual::consistency;
use fairbridge::mitigate::reject_option::fit_margin;
use fairbridge::prelude::*;
use fairbridge::stats::sinkhorn::{ordinal_cost, sinkhorn};
use fairbridge::stats::Discrete;
use fairbridge::tabular::profile::profile;
use fairbridge::tabular::GroupKey;
use fairbridge_stats::rng::StdRng;

fn biased_hiring(seed: u64, n: usize) -> fairbridge::synth::hiring::HiringData {
    let mut rng = StdRng::seed_from_u64(seed);
    fairbridge::synth::hiring::generate(
        &HiringConfig {
            n,
            ..HiringConfig::biased()
        },
        &mut rng,
    )
}

/// IV.F representation: the hiring generator's 1/3 female fraction is
/// detected as under-representation against a 50/50 population.
#[test]
fn representation_audit_on_hiring_data() {
    let mut rng = StdRng::seed_from_u64(401);
    let data = biased_hiring(401, 6000);
    let audit = representation_audit(&data.dataset, "sex", &[0.5, 0.5], 200, &mut rng).unwrap();
    assert!(
        audit.drift_detected(),
        "tv {} bound {}",
        audit.tv,
        audit.sampling_bound
    );
    let under = audit.under_represented(0.8);
    assert_eq!(under.len(), 1);
    assert_eq!(under[0].level, "female");

    // profile agrees on the minimum protected share
    let p = profile(&data.dataset).unwrap();
    assert!((p.min_protected_share().unwrap() - 1.0 / 3.0).abs() < 0.03);
}

/// A model trained on biased data discriminates by association: males
/// from the female-typical university inherit part of the penalty.
#[test]
fn association_spillover_from_trained_model() {
    let data = biased_hiring(402, 12_000);
    let ds = &data.dataset;
    // Train an unaware model — it leans on the university proxy.
    let (enc, x) = FeatureEncoder::fit_transform(ds, EncoderConfig::default()).unwrap();
    let model = LogisticTrainer::default().fit(&x, ds.labels().unwrap());
    let trained = TrainedModel::new(enc, Box::new(model));
    let annotated = trained.annotate(ds, "pred").unwrap();

    let findings = association_audit(&annotated, "sex", "female", "university", true).unwrap();
    let metro = findings
        .iter()
        .find(|f| f.protected_typical_level == "metro_college")
        .expect("metro_college finding");
    assert!(
        metro.spillover_gap < -0.05,
        "model-decided spillover {}",
        metro.spillover_gap
    );
    assert!(metro.test.significant_at(0.05));
}

/// Forests slot into the TrainedModel pipeline and inherit the label bias
/// just like linear models.
#[test]
fn forest_in_the_audit_pipeline() {
    let mut rng = StdRng::seed_from_u64(403);
    let data = biased_hiring(403, 4000);
    let ds = &data.dataset;
    let cfg = EncoderConfig {
        include_protected: true,
        ..EncoderConfig::default()
    };
    let (enc, x) = FeatureEncoder::fit_transform(ds, cfg).unwrap();
    let forest = ForestTrainer {
        n_trees: 15,
        ..ForestTrainer::default()
    }
    .fit(&x, ds.labels().unwrap(), &mut rng);
    let trained = TrainedModel::new(enc, Box::new(forest));
    let annotated = trained.annotate(ds, "pred").unwrap();
    let o = Outcomes::from_dataset(&annotated, &["sex"]).unwrap();
    let gap = demographic_parity(&o, 0).summary.gap;
    assert!(gap > 0.08, "forest parity gap {gap}");
}

/// Reject-option repair works on forest scores too, and individual
/// consistency stays high after repair.
#[test]
fn reject_option_on_forest_scores() {
    let mut rng = StdRng::seed_from_u64(404);
    let data = biased_hiring(404, 4000);
    let ds = &data.dataset;
    let (enc, x) = FeatureEncoder::fit_transform(ds, EncoderConfig::default()).unwrap();
    let forest = ForestTrainer::default().fit(&x, ds.labels().unwrap(), &mut rng);
    let trained = TrainedModel::new(enc, Box::new(forest));
    let scores = trained.score_dataset(ds).unwrap();

    let rule = fit_margin(
        ds,
        &["sex"],
        &scores,
        GroupKey(vec!["female".into()]),
        &[0.05, 0.1, 0.2, 0.3],
        0.05,
    )
    .unwrap();
    let result = rule.apply(ds, &["sex"], &scores).unwrap();
    let annotated = ds
        .with_predictions("pred", result.decisions.clone())
        .unwrap();
    let o = Outcomes::from_dataset(&annotated, &["sex"]).unwrap();
    assert!(demographic_parity(&o, 0).summary.gap < 0.1);

    // sex-blind consistency of the repaired decisions remains reasonable
    let blind = FeatureEncoder::fit(ds, EncoderConfig::default()).unwrap();
    let xb = blind.transform(ds).unwrap();
    let c = consistency(&xb, &result.decisions, 5);
    assert!(c > 0.7, "consistency after repair {c}");
}

/// Per-group isotonic calibration reduces ECE within every group.
#[test]
fn per_group_calibration_improves_every_group() {
    let data = biased_hiring(405, 8000);
    let ds = &data.dataset;
    let (enc, x) = FeatureEncoder::fit_transform(ds, EncoderConfig::default()).unwrap();
    let model = LogisticTrainer {
        epochs: 60, // deliberately undertrained → miscalibrated
        ..LogisticTrainer::default()
    }
    .fit(&x, ds.labels().unwrap());
    let trained = TrainedModel::new(enc, Box::new(model));
    let scores = trained.score_dataset(ds).unwrap();
    let labels = ds.labels().unwrap();
    let (_, sex) = ds.categorical("sex").unwrap();

    for g in 0..2u32 {
        let (gs, gl): (Vec<f64>, Vec<bool>) = scores
            .iter()
            .zip(labels)
            .zip(sex)
            .filter_map(|((&s, &l), &c)| (c == g).then_some((s, l)))
            .unzip();
        let before = expected_calibration_error(&gl, &gs, 10);
        let iso = IsotonicCalibrator::fit(&gs, &gl).unwrap();
        let after = expected_calibration_error(&gl, &iso.transform_all(&gs), 10);
        assert!(after <= before + 1e-9, "group {g}: {before} -> {after}");
    }
}

/// Cross-validated parity gap of the biased model is stable across folds.
#[test]
fn cross_validated_parity_gap() {
    let data = biased_hiring(406, 6000);
    let mut rng = StdRng::seed_from_u64(406);
    let result = cross_validate(
        &data.dataset,
        5,
        &mut rng,
        logistic_trainer(EncoderConfig::default()),
        |model, test| {
            let preds = model.predict_dataset(test)?;
            let annotated = test
                .with_predictions("pred", preds)
                .map_err(|e| e.to_string())?;
            let o = Outcomes::from_dataset(&annotated, &["sex"])?;
            Ok(demographic_parity(&o, 0).summary.gap)
        },
    )
    .unwrap();
    assert!(result.mean > 0.05, "cv gap {}", result.mean);
    assert!(result.std < 0.08, "cv gap spread {}", result.std);

    // accuracy CV too
    let mut rng = StdRng::seed_from_u64(407);
    let acc = cross_validate(
        &data.dataset,
        5,
        &mut rng,
        logistic_trainer(EncoderConfig::default()),
        |model, test| {
            let preds = model.predict_dataset(test)?;
            Ok(accuracy(test.labels().map_err(|e| e.to_string())?, &preds))
        },
    )
    .unwrap();
    assert!(acc.mean > 0.7);
}

/// Sinkhorn agrees with the exact ordinal OT used by the repair stack.
#[test]
fn sinkhorn_cross_checks_exact_ot() {
    let p = Discrete::new(vec![0.6, 0.3, 0.1]).unwrap();
    let q = Discrete::new(vec![0.2, 0.2, 0.6]).unwrap();
    let exact = fairbridge::stats::distance::wasserstein_discrete(&p, &q);
    let approx = sinkhorn(&p, &q, &ordinal_cost(3, 3), 0.01, 5000).unwrap();
    assert!(
        (approx.cost - exact).abs() < 0.03,
        "sinkhorn {} vs exact {exact}",
        approx.cost
    );
}

/// Guidelines + compliance report compile for the paper's use case and
/// reflect the audit findings.
#[test]
fn compliance_report_end_to_end() {
    let data = biased_hiring(408, 3000);
    let uc = UseCase::eu_hiring_default();
    let report = compliance_report(
        &data.dataset,
        &["sex"],
        &uc,
        &ReportOptions {
            system_name: "integration-test".to_owned(),
            ..ReportOptions::default()
        },
    )
    .unwrap();
    assert!(report.contains("integration-test"));
    assert!(report.contains("Legal basis"));
    assert!(report.contains("raised concerns"));
    assert!(report.contains("Deployment checklist"));

    let guidelines = compile_guidelines(&uc);
    assert!(!guidelines.launch_gates().is_empty());
    for gate in guidelines.launch_gates() {
        assert!(
            report.contains(&gate.action),
            "gate missing: {}",
            gate.action
        );
    }
}
