//! Integration: the numeric kernel layer driven end-to-end through the
//! public crate surface — an encoded synthetic cohort trained with the
//! buffer-reusing logistic trainer at several worker counts (bitwise
//! equality), the deterministic parallel bootstrap and Sinkhorn kernels
//! feeding audit-style quantities, kernel telemetry counters, and the
//! entropic categorical repair plan built on top of the solver.

use fairbridge::learn::encode::{EncoderConfig, FeatureEncoder};
use fairbridge::learn::logistic::LogisticTrainer;
use fairbridge::learn::model::Scorer;
use fairbridge::mitigate::ot::entropic_repair_plan;
use fairbridge::obs::{RingSink, Telemetry};
use fairbridge::prelude::*;
use fairbridge::stats::bootstrap::{par_bootstrap_ci_observed, par_bootstrap_ci_two_sample};
use fairbridge::stats::descriptive::mean;
use fairbridge::stats::rng::StdRng;
use fairbridge::stats::sinkhorn::{ordinal_cost, par_sinkhorn_observed};
use fairbridge::stats::Discrete;
use fairbridge::synth::hiring::{self, HiringConfig};
use std::sync::Arc;

fn hiring_ds(n: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(0xFEED);
    hiring::generate(
        &HiringConfig {
            n,
            ..HiringConfig::biased()
        },
        &mut rng,
    )
    .dataset
}

/// Encoded real-cohort training is bitwise-identical across worker
/// counts and records kernel telemetry.
#[test]
fn encoded_training_is_deterministic_and_observed() {
    let ds = hiring_ds(4000);
    let (_, x) = FeatureEncoder::fit_transform(&ds, EncoderConfig::default()).unwrap();
    let y = ds.labels().unwrap();
    let sw = vec![1.0; y.len()];

    let telemetry = Telemetry::new(Arc::new(RingSink::with_capacity(64)));
    let trainer = LogisticTrainer {
        epochs: 60,
        ..LogisticTrainer::default()
    };
    let serial = trainer.fit_weighted_observed(&x, y, &sw, &telemetry);
    assert!(telemetry.counter("kernel.gemv_calls").get() >= 1);

    for workers in [2, 8] {
        let par = LogisticTrainer {
            workers,
            ..trainer.clone()
        }
        .fit_weighted(&x, y, &sw);
        assert_eq!(serial, par, "{workers}-worker fit drifted");
    }

    // The model remains a usable classifier on its training cohort.
    let acc = x
        .rows()
        .zip(y)
        .filter(|(row, &label)| (serial.score(row) >= 0.5) == label)
        .count() as f64
        / y.len() as f64;
    assert!(acc > 0.7, "accuracy {acc}");
}

/// A fairness-gap CI computed by the parallel bootstrap matches the
/// 1-worker run exactly and detects the planted hiring gap.
#[test]
fn parallel_bootstrap_detects_hiring_gap_deterministically() {
    let ds = hiring_ds(4000);
    let (_, codes) = ds.categorical("sex").unwrap();
    let y = ds.labels().unwrap();
    let male: Vec<f64> = y
        .iter()
        .zip(codes)
        .filter_map(|(&l, &c)| (c == 0).then_some(f64::from(l)))
        .collect();
    let female: Vec<f64> = y
        .iter()
        .zip(codes)
        .filter_map(|(&l, &c)| (c == 1).then_some(f64::from(l)))
        .collect();
    let gap = |m: &[f64], f: &[f64]| mean(m) - mean(f);

    let one = par_bootstrap_ci_two_sample(&male, &female, gap, 600, 0.95, 0xCAFE, 1);
    let eight = par_bootstrap_ci_two_sample(&male, &female, gap, 600, 0.95, 0xCAFE, 8);
    assert_eq!(one, eight, "worker count changed the CI");
    assert!(one.point > 0.05, "planted gap missing: {}", one.point);
    assert!(one.excludes(0.0), "gap CI should exclude zero: {one:?}");

    // Observed single-sample variant records the resample counter.
    let telemetry = Telemetry::new(Arc::new(RingSink::with_capacity(64)));
    par_bootstrap_ci_observed(&male, mean, 250, 0.9, 7, 4, &telemetry);
    assert_eq!(telemetry.counter("bootstrap.resamples").get(), 250);
}

/// The observed Sinkhorn solver and the categorical repair plan built on
/// it agree with the exact ordinal OT cost and count iterations.
#[test]
fn sinkhorn_kernel_feeds_categorical_repair() {
    let p = Discrete::new(vec![0.55, 0.25, 0.12, 0.08]).unwrap();
    let q = Discrete::new(vec![0.25, 0.25, 0.25, 0.25]).unwrap();
    let cost = ordinal_cost(4, 4);

    let telemetry = Telemetry::new(Arc::new(RingSink::with_capacity(64)));
    let tight = par_sinkhorn_observed(&p, &q, &cost, 0.01, 8000, 8, &telemetry).unwrap();
    assert!(tight.converged);
    assert_eq!(
        telemetry.counter("sinkhorn.iterations").get(),
        tight.iterations as u64
    );
    let exact = fairbridge::stats::sinkhorn::exact_ordinal_ot(&p, &q);
    assert!(
        (tight.cost - exact).abs() < 0.02,
        "entropic {} vs exact {exact}",
        tight.cost
    );

    let plan = entropic_repair_plan(&p, &q, &cost, 0.05, 8).unwrap();
    assert!(plan.converged);
    for i in 0..4 {
        let sum: f64 = plan.row(i).iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "row {i} not stochastic: {sum}");
    }
    // The over-represented first level must shed mass rightward.
    assert!(plan.row(0)[0] < 1.0);
}
