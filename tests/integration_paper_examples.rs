//! Integration tests reproducing every worked example of the paper's
//! Section III with its exact numbers, end to end through the public API.

use fairbridge::metrics::conditional::conditional_parity_on_labels;
use fairbridge::metrics::counterfactual::{counterfactual_fairness, AdjustStrategy};
use fairbridge::metrics::disparity::{conditional_demographic_disparity, demographic_disparity};
use fairbridge::metrics::odds::equalized_odds;
use fairbridge::metrics::opportunity::equal_opportunity;
use fairbridge::prelude::*;
use fairbridge::synth::hiring::exact_cohort;
use fairbridge::tabular::Column;

/// §III.A: 20 male applicants (10 hired), 10 female. Fair iff 5 females
/// hired; fewer is bias against females, more is bias against males.
#[test]
fn section_iii_a_demographic_parity() {
    let cohort = |females_hired: usize| {
        exact_cohort(&[
            (false, true, true, 10),
            (false, false, false, 10),
            (true, true, true, females_hired),
            (true, true, false, 10 - females_hired),
        ])
    };
    for (hired, fair, against_females) in [(5, true, false), (3, false, true), (8, false, false)] {
        let ds = cohort(hired);
        let o = Outcomes::from_labels_as_decisions(&ds, &["sex"]).unwrap();
        let report = demographic_parity(&o, 0);
        assert_eq!(report.is_fair(1e-9), fair, "hired={hired}");
        if !fair {
            let min = report.summary.min_group.as_ref().unwrap().levels()[0].clone();
            assert_eq!(min == "female", against_females, "hired={hired}");
        }
    }
}

/// §III.B: 10 young males (5 hired), 6 young females. Fair iff 3 young
/// females hired.
#[test]
fn section_iii_b_conditional_statistical_parity() {
    let cohort = |young_females_hired: usize| {
        let mut sex = Vec::new();
        let mut young = Vec::new();
        let mut hired = Vec::new();
        for i in 0..10 {
            sex.push(0u32);
            young.push(true);
            hired.push(i < 5);
        }
        for _ in 0..10 {
            sex.push(0);
            young.push(false);
            hired.push(false);
        }
        for i in 0..6 {
            sex.push(1);
            young.push(true);
            hired.push(i < young_females_hired);
        }
        for _ in 0..4 {
            sex.push(1);
            young.push(false);
            hired.push(false);
        }
        Dataset::builder()
            .categorical_with_role("sex", vec!["male", "female"], sex, Role::Protected)
            .boolean("young", young)
            .boolean_with_role("hired", hired, Role::Label)
            .build()
            .unwrap()
    };
    let fair = conditional_parity_on_labels(&cohort(3), &["sex"], &["young"], 0).unwrap();
    let young_stratum = fair
        .strata
        .iter()
        .find(|s| s.stratum.levels()[0] == "true")
        .unwrap();
    assert!(young_stratum.parity.is_fair(1e-9));

    let biased = conditional_parity_on_labels(&cohort(1), &["sex"], &["young"], 0).unwrap();
    assert!(!biased.is_fair(0.05));
}

/// §III.C: 10 qualified males (5 hired), 6 qualified females. Fair iff 3
/// qualified females hired.
#[test]
fn section_iii_c_equal_opportunity() {
    let cohort = |qualified_females_hired: usize| {
        let mut preds = Vec::new();
        let mut labels = Vec::new();
        let mut codes = Vec::new();
        for i in 0..10 {
            preds.push(i < 5);
            labels.push(true);
            codes.push(0u32);
        }
        for _ in 0..10 {
            preds.push(false);
            labels.push(false);
            codes.push(0);
        }
        for i in 0..6 {
            preds.push(i < qualified_females_hired);
            labels.push(true);
            codes.push(1);
        }
        for _ in 0..4 {
            preds.push(false);
            labels.push(false);
            codes.push(1);
        }
        Outcomes::from_slices(&preds, Some(&labels), &codes, &["male", "female"]).unwrap()
    };
    let fair = equal_opportunity(&cohort(3), 0).unwrap();
    assert!(fair.is_fair(1e-9));
    for r in &fair.tpr {
        assert!((r.rate - 0.5).abs() < 1e-12);
    }
    let biased = equal_opportunity(&cohort(1), 0).unwrap();
    assert!(!biased.is_fair(0.05));
    assert_eq!(biased.summary.min_group.unwrap().levels()[0], "female");
}

/// §III.D: 12 males (6 qualified, all hired; 6 not, all rejected), 6
/// females (3 qualified). Fair iff all 3 qualified females hired and all
/// 3 unqualified rejected; 9 hires total.
#[test]
fn section_iii_d_equalized_odds() {
    let mut preds = Vec::new();
    let mut labels = Vec::new();
    let mut codes = Vec::new();
    for _ in 0..6 {
        preds.push(true);
        labels.push(true);
        codes.push(0u32);
    }
    for _ in 0..6 {
        preds.push(false);
        labels.push(false);
        codes.push(0);
    }
    for _ in 0..3 {
        preds.push(true);
        labels.push(true);
        codes.push(1);
    }
    for _ in 0..3 {
        preds.push(false);
        labels.push(false);
        codes.push(1);
    }
    assert_eq!(preds.iter().filter(|&&p| p).count(), 9);
    let o = Outcomes::from_slices(&preds, Some(&labels), &codes, &["male", "female"]).unwrap();
    let report = equalized_odds(&o, 0).unwrap();
    assert!(report.is_fair(1e-9));
    for r in &report.tpr {
        assert_eq!(r.rate, 1.0);
    }
    for r in &report.fpr {
        assert_eq!(r.rate, 0.0);
    }
}

/// §III.E: 10 females; fair iff MORE than 5 hired (strict).
#[test]
fn section_iii_e_demographic_disparity() {
    let run = |hired: usize| {
        let preds: Vec<bool> = (0..10).map(|i| i < hired).collect();
        let o = Outcomes::from_slices(&preds, None, &[0; 10], &["female"]).unwrap();
        demographic_disparity(&o).is_fair()
    };
    assert!(run(6));
    assert!(!run(5));
    assert!(!run(4));
}

/// §III.F: 100 females over 5 jobs, 40 hired; all accepted in jobs 1–4,
/// all rejected in job 5. Marginal check says unfair; conditional check
/// blames only job 5.
#[test]
fn section_iii_f_conditional_demographic_disparity() {
    let mut sex = Vec::new();
    let mut job = Vec::new();
    let mut hired = Vec::new();
    for j in 0..4u32 {
        for _ in 0..10 {
            sex.push(0u32);
            job.push(j);
            hired.push(true);
        }
    }
    for _ in 0..60 {
        sex.push(0);
        job.push(4);
        hired.push(false);
    }
    let ds = Dataset::builder()
        .categorical_with_role("sex", vec!["female"], sex, Role::Protected)
        .categorical_with_role(
            "job",
            vec!["job1", "job2", "job3", "job4", "job5"],
            job,
            Role::Feature,
        )
        .boolean_with_role("hired", hired, Role::Label)
        .build()
        .unwrap();
    assert_eq!(ds.n_rows(), 100);
    assert_eq!(ds.labels().unwrap().iter().filter(|&&h| h).count(), 40);

    let marginal = Outcomes::from_labels_as_decisions(&ds, &["sex"]).unwrap();
    assert!(!demographic_disparity(&marginal).is_fair());

    let cond = conditional_demographic_disparity(&ds, &["sex"], &["job"], true).unwrap();
    let unfair: Vec<String> = cond
        .unfair_strata()
        .iter()
        .map(|k| k.levels()[0].clone())
        .collect();
    assert_eq!(unfair, vec!["job5".to_owned()]);
}

/// §III.G: flip an individual's sex (adjusting correlated features); the
/// model's decision must not change.
#[test]
fn section_iii_g_counterfactual_fairness() {
    // A model trained on sex-determined labels flips; a merit-based model
    // does not.
    let n = 60;
    let sex: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
    // merit independent of sex: both parities see the same value cycle
    let merit: Vec<f64> = (0..n).map(|i| ((i / 2) % 6) as f64).collect();
    let biased_label: Vec<bool> = sex.iter().map(|&s| s == 0).collect();
    let fair_label: Vec<bool> = merit.iter().map(|&m| m >= 3.0).collect();

    let build = |labels: Vec<bool>| {
        Dataset::builder()
            .categorical_with_role("sex", vec!["male", "female"], sex.clone(), Role::Protected)
            .numeric("merit", merit.clone())
            .boolean_with_role("hired", labels, Role::Label)
            .build()
            .unwrap()
    };
    let train = |ds: &Dataset, aware: bool| {
        let cfg = EncoderConfig {
            include_protected: aware,
            standardize: false,
            ..EncoderConfig::default()
        };
        let (enc, x) = FeatureEncoder::fit_transform(ds, cfg).unwrap();
        let model = LogisticTrainer {
            epochs: 3000,
            learning_rate: 1.0,
            ..LogisticTrainer::default()
        }
        .fit(&x, ds.labels().unwrap());
        TrainedModel::new(enc, Box::new(model))
    };

    let biased_ds = build(biased_label);
    let biased_model = train(&biased_ds, true);
    let flipped =
        counterfactual_fairness(&biased_model, &biased_ds, "sex", AdjustStrategy::Identity)
            .unwrap();
    assert!(flipped.flip_rate > 0.9, "flip rate {}", flipped.flip_rate);

    let fair_ds = build(fair_label);
    let fair_model = train(&fair_ds, false);
    for strategy in [AdjustStrategy::Identity, AdjustStrategy::GroupMeanShift] {
        let r = counterfactual_fairness(&fair_model, &fair_ds, "sex", strategy).unwrap();
        assert!(r.flip_rate < 0.05, "{strategy:?} flip rate {}", r.flip_rate);
    }
}

/// §IV.A mapping claim: A,B,E,F → equal outcome; C,D → equal treatment;
/// G → middle ground — checked through the public Definition API.
#[test]
fn section_iv_a_equality_mapping() {
    use fairbridge::metrics::Definition::*;
    use fairbridge::metrics::EqualityNotion::*;
    let expected = [
        (DemographicParity, EqualOutcome),
        (ConditionalStatisticalParity, EqualOutcome),
        (EqualOpportunity, EqualTreatment),
        (EqualizedOdds, EqualTreatment),
        (DemographicDisparity, EqualOutcome),
        (ConditionalDemographicDisparity, EqualOutcome),
        (CounterfactualFairness, MiddleGround),
    ];
    for (def, notion) in expected {
        assert_eq!(def.equality_notion(), notion, "{def:?}");
    }
}

/// The III.A arithmetic again, but through a dataset column replacement —
/// exercising `Column` plumbing across crates.
#[test]
fn exact_cohort_supports_label_surgery() {
    let ds = exact_cohort(&[(false, true, true, 20), (true, true, false, 10)]);
    let new_labels = vec![true; 30];
    let ds2 = ds
        .drop_column("hired")
        .unwrap()
        .with_column("hired", Column::Boolean(new_labels), Role::Label)
        .unwrap();
    assert!(ds2.labels().unwrap().iter().all(|&h| h));
}
