//! End-to-end pipeline tests: generator → model → audit → criteria
//! engine, spanning every crate through the `fairbridge` facade.

use fairbridge::audit::pipeline::{AuditConfig, AuditPipeline};
use fairbridge::prelude::*;
use fairbridge_stats::rng::StdRng;

/// Train a logistic model on a hiring dataset and audit its *predictions*
/// (not the historical labels): the model inherits the planted bias.
#[test]
fn model_predictions_inherit_label_bias() {
    let mut rng = StdRng::seed_from_u64(101);
    let data = fairbridge::synth::hiring::generate(
        &HiringConfig {
            n: 6000,
            ..HiringConfig::biased()
        },
        &mut rng,
    );
    let ds = &data.dataset;
    let (train, test) = fairbridge::learn::split::train_test_split(ds, 0.3, &mut rng).unwrap();

    let (enc, x) = FeatureEncoder::fit_transform(&train, EncoderConfig::default()).unwrap();
    let model = LogisticTrainer::default().fit(&x, train.labels().unwrap());
    let trained = TrainedModel::new(enc, Box::new(model));

    let annotated = trained.annotate(&test, "pred").unwrap();
    let report = AuditPipeline::new(AuditConfig::default())
        .run(&annotated, &["sex"], false)
        .unwrap();
    assert!(report.has_concerns());
    let parity_line = report
        .metrics
        .lines
        .iter()
        .find(|l| l.definition == Definition::DemographicParity)
        .unwrap();
    assert!(
        parity_line.gap > 0.08,
        "model parity gap {}",
        parity_line.gap
    );
}

/// CSV round trip feeds the same audit as the in-memory dataset.
#[test]
fn csv_roundtrip_preserves_audit_results() {
    let mut rng = StdRng::seed_from_u64(102);
    let data = fairbridge::synth::hiring::generate(
        &HiringConfig {
            n: 1000,
            ..HiringConfig::biased()
        },
        &mut rng,
    );
    let ds = &data.dataset;
    let csv = fairbridge::tabular::io::write_csv_string(ds).unwrap();
    let back = fairbridge::tabular::io::read_csv_str(&csv).unwrap();
    // Roles are not serialized; restore them.
    let back = back
        .with_role("sex", Role::Protected)
        .unwrap()
        .with_role("hired", Role::Label)
        .unwrap()
        .with_role("qualified", Role::Ignored)
        .unwrap();

    let o1 = Outcomes::from_labels_as_decisions(ds, &["sex"]).unwrap();
    let o2 = Outcomes::from_labels_as_decisions(&back, &["sex"]).unwrap();
    let g1 = demographic_parity(&o1, 0).summary.gap;
    let g2 = demographic_parity(&o2, 0).summary.gap;
    assert!((g1 - g2).abs() < 1e-12);
}

/// The criteria engine's recommendation is actionable: every recommended
/// definition can actually be evaluated with the data at hand.
#[test]
fn recommendation_is_executable_on_the_data() {
    let mut rng = StdRng::seed_from_u64(103);
    let data = fairbridge::synth::hiring::generate(
        &HiringConfig {
            n: 2000,
            ..HiringConfig::biased()
        },
        &mut rng,
    );
    let ds = &data.dataset;
    let uc = UseCase::eu_hiring_default();
    let rec = recommend(&uc);
    let o = Outcomes::from_labels_as_decisions(ds, &["sex"]).unwrap();

    for r in &rec.definitions {
        match r.definition {
            Definition::DemographicParity => {
                let _ = demographic_parity(&o, 0);
            }
            Definition::ConditionalDemographicDisparity => {
                // condition on the university as the available stratum
                let _ = fairbridge::metrics::disparity::conditional_demographic_disparity(
                    ds,
                    &["sex"],
                    &["university"],
                    true,
                )
                .unwrap();
            }
            Definition::CounterfactualFairness => {
                let (enc, x) = FeatureEncoder::fit_transform(ds, EncoderConfig::default()).unwrap();
                let model = LogisticTrainer::default().fit(&x, ds.labels().unwrap());
                let trained = TrainedModel::new(enc, Box::new(model));
                let _ = fairbridge::metrics::counterfactual::counterfactual_fairness(
                    &trained,
                    ds,
                    "sex",
                    fairbridge::metrics::counterfactual::AdjustStrategy::GroupMeanShift,
                )
                .unwrap();
            }
            other => {
                // every other definition is label-based and computable
                assert!(
                    !other.requires_model(),
                    "unexpected model-based rec {other:?}"
                );
            }
        }
    }
}

/// Multi-attribute intersectional pipeline through the facade.
#[test]
fn intersectional_pipeline_end_to_end() {
    let mut rng = StdRng::seed_from_u64(104);
    let ds = fairbridge::synth::intersectional::generate(
        &IntersectionalConfig {
            n: 6000,
            ..IntersectionalConfig::default()
        },
        &mut rng,
    );
    // Auditing each attribute alone looks fine...
    for attr in ["gender", "race"] {
        let single = AuditPipeline::new(AuditConfig::default())
            .run(&ds, &[attr], true)
            .unwrap();
        let parity = single
            .metrics
            .lines
            .iter()
            .find(|l| l.definition == Definition::DemographicParity)
            .unwrap();
        assert!(parity.gap < 0.05, "{attr} marginal gap {}", parity.gap);
    }
    // ...while the intersectional run groups by (gender × race) and sees
    // the planted 0.4 gap, corroborated by the subgroup findings.
    let report = AuditPipeline::new(AuditConfig::default())
        .run(&ds, &["gender", "race"], true)
        .unwrap();
    let parity = report
        .metrics
        .lines
        .iter()
        .find(|l| l.definition == Definition::DemographicParity)
        .unwrap();
    assert!(parity.gap > 0.3, "intersection parity gap {}", parity.gap);
    assert!(!report.subgroups.is_empty());
    assert_eq!(report.subgroups[0].conditions.len(), 2);
}

/// Group-blind repair through the facade: no per-row protected attribute.
#[test]
fn group_blind_repair_via_facade() {
    use fairbridge::mitigate::group_blind::GroupBlindRepairer;
    let mut rng = StdRng::seed_from_u64(105);
    use fairbridge_stats::rng::Rng;
    let draw = |g: u32, rng: &mut StdRng| -> f64 {
        if g == 0 {
            1.0 + rng.gen::<f64>()
        } else {
            rng.gen::<f64>()
        }
    };
    let mut research_v = Vec::new();
    let mut research_g = Vec::new();
    for _ in 0..200 {
        let g = u32::from(rng.gen::<f64>() < 0.3);
        research_g.push(g);
        research_v.push(draw(g, &mut rng));
    }
    let deployment: Vec<f64> = (0..2000)
        .map(|_| {
            let g = u32::from(rng.gen::<f64>() < 0.3);
            draw(g, &mut rng)
        })
        .collect();
    let repairer =
        GroupBlindRepairer::fit(&research_v, &research_g, &[0.7, 0.3], &deployment).unwrap();
    let repaired = repairer.repair_all_soft(&deployment, 1.0);
    assert_eq!(repaired.len(), deployment.len());
    // repaired values concentrate on the barycenter's support
    let mean: f64 = repaired.iter().sum::<f64>() / repaired.len() as f64;
    assert!(mean > 0.5 && mean < 2.0, "mean {mean}");
}
